// Package locaware is a simulation library reproducing "Locaware: Index
// Caching in Unstructured P2P-file Sharing Systems" (El Dick & Pacitti,
// DAMAP/EDBT 2009).
//
// Locaware reduces P2P bandwidth waste in Gnutella-like file-sharing
// overlays by caching query-response indexes with physical-location tags
// (landmark-derived locIds), exploiting natural file replication (every
// requester becomes a provider), and routing keyword queries with gossiped
// Bloom filters. This package exposes the full evaluation apparatus: a
// discrete-event simulator, a BRITE-style latency model with landmarks, an
// unstructured overlay with churn, the workload of §5.1, and the four
// compared protocols (Flooding, Dicas, Dicas-Keys, Locaware) plus the
// location-aware-routing extension sketched in the paper's conclusion.
//
// Quick start:
//
//	opts := locaware.DefaultOptions()
//	opts.Peers = 500
//	res, err := locaware.Run(opts, locaware.ProtocolLocaware, 500, 1000)
//	if err != nil { ... }
//	fmt.Println(res.SuccessRate, res.AvgMessagesPerQuery, res.AvgDownloadRTTMs)
//
// Replicated experiments fan independent trials out across the CPUs, each
// in its own deterministically seeded world, and report mean ± 95% CI for
// every metric — same seed, same results, at any worker count:
//
//	opts.Trials, opts.Workers = 8, 0 // Workers 0 = one per CPU
//	agg, err := locaware.RunTrials(opts, locaware.ProtocolLocaware, 500, 1000)
//	if err != nil { ... }
//	fmt.Println(agg.SuccessRate) // e.g. "0.431±0.012"
//
// To regenerate a paper figure, use Compare and FigureTable (single trial)
// or CompareTrials (replicated, with error bars); see cmd/locaware-exp for
// the complete harness.
package locaware

import (
	"errors"
	"fmt"

	"github.com/p2prepro/locaware/internal/core"
	"github.com/p2prepro/locaware/internal/overlay"
	"github.com/p2prepro/locaware/internal/protocol"
	"github.com/p2prepro/locaware/internal/sim"
	"github.com/p2prepro/locaware/internal/stats"
	"github.com/p2prepro/locaware/internal/trace"
)

// Protocol selects a search/caching protocol.
type Protocol string

// The five available protocols. The first four are the paper's §5
// comparison; ProtocolLocawareLR adds the location-aware routing extension
// proposed in §6.
const (
	ProtocolFlooding   Protocol = "Flooding"
	ProtocolDicas      Protocol = "Dicas"
	ProtocolDicasKeys  Protocol = "Dicas-Keys"
	ProtocolLocaware   Protocol = "Locaware"
	ProtocolLocawareLR Protocol = "Locaware-LR"
)

// Baselines returns the paper's four compared protocols in figure order.
func Baselines() []Protocol {
	return []Protocol{ProtocolFlooding, ProtocolDicas, ProtocolDicasKeys, ProtocolLocaware}
}

// ErrUnknownProtocol reports an unrecognised Protocol value.
var ErrUnknownProtocol = errors.New("locaware: unknown protocol")

func (p Protocol) behavior() (protocol.Behavior, error) {
	switch p {
	case ProtocolFlooding:
		return protocol.Flooding{}, nil
	case ProtocolDicas:
		return protocol.Dicas{}, nil
	case ProtocolDicasKeys:
		return protocol.DicasKeys{}, nil
	case ProtocolLocaware:
		return protocol.Locaware{}, nil
	case ProtocolLocawareLR:
		return protocol.LocawareLR{}, nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownProtocol, string(p))
	}
}

// Options configures a simulation. Zero fields fall back to the paper's
// §5.1 values (see DefaultOptions).
type Options struct {
	// Seed roots every random stream; equal seeds give identical worlds
	// and workloads across protocols.
	Seed int64
	// Peers is the overlay size (paper: 1000).
	Peers int
	// AvgDegree is the overlay's average connectivity degree (paper: 3).
	AvgDegree float64
	// Landmarks is the landmark count; k landmarks yield k! locIds
	// (paper: 4 → 24).
	Landmarks int
	// Files is the catalogue size (paper: 3000); FilesPerPeer the initial
	// share count (paper: 3); KeywordPool the keyword universe (paper:
	// 9000).
	Files        int
	FilesPerPeer int
	KeywordPool  int
	// QueryRate is queries/second/peer (paper: 0.00083); ZipfS the
	// popularity exponent.
	QueryRate float64
	ZipfS     float64
	// TTL bounds query propagation (paper: 7); Groups is the Dicas group
	// count M.
	TTL    int
	Groups int
	// CacheFilenames bounds each response index (paper: 50);
	// CacheProviders bounds providers per cached filename.
	CacheFilenames int
	CacheProviders int
	// BloomBits sizes the keyword Bloom filter (paper: 1200).
	BloomBits int
	// Churn enables peer leave/rejoin dynamics for the whole run. It is
	// the legacy dynamics switch, equivalent to Scenario =
	// ScenarioByName("steady-churn") (and implemented as exactly that);
	// Scenario, when set, takes precedence.
	Churn bool
	// Scenario, when non-nil, runs the simulation under a phased-dynamics
	// timeline — churn waves, flash crowds, content injection/removal,
	// regional degradation — and reports every metric per phase
	// (Result.Phases). Scenarios apply to every entry point: Run, Compare,
	// RunTrials and CompareTrials all honour it, and RunScenario bundles
	// the per-phase view.
	Scenario *Scenario
	// RetainRecords keeps every per-query record in memory and exposes them
	// as Result.Records — the full-fidelity trace mode used by
	// cmd/locaware-trace. Off (the default), the measurement plane is a
	// streaming accumulator whose state is O(checkpoints), so memory no
	// longer grows with the query count; all aggregate metrics and figure
	// tables are bit-identical either way.
	RetainRecords bool
	// Sweep, when non-nil, is the declarative campaign RunSweep executes:
	// a grid of axes over these Options' parameters crossed with a protocol
	// set, replicated per cell and aggregated with error bars. The other
	// Options fields act as the campaign's base configuration. Only
	// RunSweep consults it.
	Sweep *Sweep
	// Shards, when > 1, runs each simulation on the sharded event loop:
	// peers partition into Shards per-locality event queues (occupied
	// locIds dense-ranked, rank modulo Shards), protocol state is split
	// per shard, and the queues of each epoch drain on one goroutine per
	// shard — a single run uses multiple cores — with cross-locality
	// deliveries hopping queues through a deterministic mailbox and the
	// epoch width derived from the latency model's one-way floor. Runs are
	// exactly reproducible for a fixed shard count; because cross-shard
	// same-instant deliveries interleave differently than in the single
	// queue, results are statistically equivalent rather than bit-identical
	// to Shards <= 1 (which always takes the plain engine path, locked
	// byte-for-byte by the golden tables). Values exceeding the occupied
	// locality count clamp down to it. See README "Typed event core and
	// sharding".
	Shards int
	// Observer, when non-nil, attaches run-wide observability: every
	// simulation executed under these Options accumulates event-loop and
	// protocol telemetry into the Observer's registry, and Result.Runtime
	// carries the per-run snapshot. Instrumentation is inert — results
	// are byte-identical with or without it. See NewObserver.
	Observer *Observer
	// FlightRecorder, when non-nil, attaches tail-sampling causal query
	// tracing: queries matching the retention policy (slowest-N, failed,
	// deep) are kept as span trees on Result.Traces, renderable as text
	// timelines (Trace.Render) or exportable to Perfetto
	// (Result.WritePerfetto). Recording is inert — per-shard trace cells
	// merge at the epoch barrier, so the parallel drain stays enabled and
	// results are byte-identical with or without it. See FlightRecorder.
	FlightRecorder *FlightRecorder
	// Trials is the number of independent replications RunTrials and
	// CompareTrials execute per protocol (<= 0 means 1). Trial t runs in
	// its own simulated world rooted at a seed derived deterministically
	// from (Seed, t); trial 0 reproduces the single-run Run output exactly.
	Trials int
	// Workers bounds how many simulations run concurrently in RunTrials,
	// CompareTrials and Compare (<= 0 means runtime.NumCPU()). Worker count
	// never changes results, only wall-clock time.
	Workers int
}

// DefaultOptions returns the paper's evaluation setup.
func DefaultOptions() Options {
	return Options{
		Seed:           1,
		Peers:          1000,
		AvgDegree:      3,
		Landmarks:      4,
		Files:          3000,
		FilesPerPeer:   3,
		KeywordPool:    9000,
		QueryRate:      0.00083,
		ZipfS:          1.0,
		TTL:            7,
		Groups:         4,
		CacheFilenames: 50,
		CacheProviders: 5,
		BloomBits:      1200,
	}
}

// coreConfig lowers Options to the internal configuration.
func (o Options) coreConfig() core.Config {
	cfg := core.DefaultConfig()
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	if o.Peers > 0 {
		cfg.NumPeers = o.Peers
	}
	if o.AvgDegree > 0 {
		cfg.AvgDegree = o.AvgDegree
	}
	if o.Landmarks > 0 {
		cfg.Landmarks = o.Landmarks
	}
	if o.Files > 0 {
		cfg.Catalog.NumFiles = o.Files
	}
	if o.KeywordPool > 0 {
		cfg.Catalog.KeywordPool = o.KeywordPool
	}
	if o.FilesPerPeer > 0 {
		cfg.FilesPerPeer = o.FilesPerPeer
	}
	if o.QueryRate > 0 {
		cfg.Gen.RatePerPeer = o.QueryRate
	}
	if o.ZipfS > 0 {
		cfg.Gen.ZipfS = o.ZipfS
	}
	if o.TTL > 0 {
		cfg.Protocol.TTL = o.TTL
	}
	if o.Groups > 0 {
		cfg.Protocol.GroupCount = o.Groups
	}
	if o.CacheFilenames > 0 {
		cfg.Protocol.Cache.MaxFilenames = o.CacheFilenames
	}
	if o.CacheProviders > 0 {
		cfg.Protocol.Cache.MaxProvidersPerFile = o.CacheProviders
	}
	if o.BloomBits > 0 {
		cfg.Protocol.BloomBits = o.BloomBits
	}
	// Bloom gossip piggybacks on ordinary data exchange (§4.2), so its
	// cadence follows system activity: when the query rate is accelerated
	// above the paper's 0.00083 q/s/peer for fast experimentation, scale
	// the gossip period down proportionally to keep "queries per gossip
	// round" constant.
	if o.QueryRate > 0 {
		scale := DefaultOptions().QueryRate / o.QueryRate
		if scale > 1 {
			scale = 1
		}
		period := sim.Time(float64(cfg.Protocol.BloomGossipPeriod) * scale)
		if period < sim.Second {
			period = sim.Second
		}
		cfg.Protocol.BloomGossipPeriod = period
	}
	if o.Shards > 1 {
		cfg.Shards = o.Shards
	}
	cfg.ChurnEnabled = o.Churn
	cfg.Churn = overlay.DefaultChurn()
	if o.Scenario != nil {
		cfg.Scenario = o.Scenario.spec
	}
	cfg.Protocol.Collector.RetainRecords = o.RetainRecords
	if o.Observer != nil {
		cfg.Obs = o.Observer.reg
	}
	if o.FlightRecorder != nil {
		cfg.TracePolicy = o.FlightRecorder.policy()
	}
	return cfg
}

// Result summarises one protocol run.
type Result struct {
	// Protocol is the protocol that produced the result.
	Protocol Protocol
	// Queries is the number of measured queries.
	Queries int
	// SuccessRate is satisfied/submitted (Fig. 4's metric).
	SuccessRate float64
	// AvgMessagesPerQuery is the mean search traffic (Fig. 3's metric).
	AvgMessagesPerQuery float64
	// AvgDownloadRTTMs is the mean requester→provider RTT over successful
	// queries in milliseconds (Fig. 2's metric).
	AvgDownloadRTTMs float64
	// SameLocalityRate is the fraction of downloads served from the
	// requester's own locality.
	SameLocalityRate float64
	// CacheHitRate is the fraction of successes answered from a response
	// index rather than shared storage.
	CacheHitRate float64
	// AvgHops is the mean overlay distance to the first hit.
	AvgHops float64
	// BloomForwards, GidForwards and FallbackForwards count how many
	// forwarding decisions each routing tier made; FloodForwards counts
	// blind forwards (Flooding only).
	BloomForwards    uint64
	GidForwards      uint64
	FallbackForwards uint64
	FloodForwards    uint64
	// ControlMessages and ControlKbits account Bloom-filter gossip
	// (Locaware only), kept separate from search traffic as in the paper.
	ControlMessages uint64
	ControlKbits    float64
	// CachedFilenames and CachedProviderEntries snapshot aggregate
	// response-index occupancy at the end of the run.
	CachedFilenames       int
	CachedProviderEntries int
	// SimulatedSeconds is the virtual duration of the run.
	SimulatedSeconds float64
	// Events is the number of simulator events processed.
	Events uint64
	// Records holds every measured query's outcome in submission order —
	// populated only when Options.RetainRecords is set (memory grows with
	// the query count).
	Records []QueryRecord
	// Phases holds the per-phase metric windows, in timeline order —
	// populated only when the run executed under a scenario (explicit
	// Options.Scenario, or the steady-churn lowering of Options.Churn).
	Phases []PhaseMetrics
	// Runtime is the run's observability snapshot — populated only when
	// the run executed under an Observer (Options.Observer).
	Runtime *RuntimeStats
	// Traces holds the flight recorder's retained query traces, slowest
	// first — populated only when the run executed under a recorder
	// (Options.FlightRecorder). Export them with WritePerfetto.
	Traces []*Trace

	tracePhases []trace.Event
}

// QueryRecord is the outcome of one measured query (RetainRecords mode).
type QueryRecord struct {
	// ID is the query's 1-based submission sequence number.
	ID uint64
	// Messages is the overlay message count the query produced.
	Messages int
	// Success reports whether the query was satisfied.
	Success bool
	// DownloadRTTMs is the requester→provider RTT in ms (successes only).
	DownloadRTTMs float64
	// SameLocality reports a download served from the requester's locality.
	SameLocality bool
	// FromCache reports a hit answered from a response index.
	FromCache bool
	// Hops is the overlay hop count to the first hit.
	Hops int
}

func newResult(p Protocol, r *core.RunResult) *Result {
	var records []QueryRecord
	if recs := r.Collector.Records(); recs != nil {
		records = make([]QueryRecord, len(recs))
		for i, rec := range recs {
			records[i] = QueryRecord{
				ID:            rec.ID,
				Messages:      rec.Messages,
				Success:       rec.Success,
				DownloadRTTMs: rec.DownloadRTT,
				SameLocality:  rec.SameLocality,
				FromCache:     rec.FromCache,
				Hops:          rec.Hops,
			}
		}
	}
	var phases []PhaseMetrics
	for _, w := range r.Collector.PhaseWindows() {
		phases = append(phases, PhaseMetrics{
			Phase:               w.Name,
			Start:               w.Start,
			End:                 w.End,
			Queries:             w.Queries,
			SuccessRate:         w.SuccessRate,
			AvgMessagesPerQuery: w.MessagesPerQuery,
			AvgDownloadRTTMs:    w.DownloadRTT,
			SameLocalityRate:    w.SameLocalityRate,
			CacheHitRate:        w.CacheHitRate,
			AvgHops:             w.AvgHops,
		})
	}
	return &Result{
		Protocol:              p,
		Queries:               r.Collector.Submitted(),
		SuccessRate:           r.Collector.SuccessRate(),
		AvgMessagesPerQuery:   r.Collector.AvgMessagesPerQuery(),
		AvgDownloadRTTMs:      r.Collector.AvgDownloadRTT(),
		SameLocalityRate:      r.Collector.SameLocalityRate(),
		CacheHitRate:          r.Collector.CacheHitRate(),
		AvgHops:               r.Collector.AvgHops(),
		BloomForwards:         r.Forwarding.BloomMatched,
		GidForwards:           r.Forwarding.GidMatched,
		FallbackForwards:      r.Forwarding.Fallback,
		FloodForwards:         r.Forwarding.FloodAll,
		ControlMessages:       r.ControlMessages,
		ControlKbits:          float64(r.ControlBits) / 1000,
		CachedFilenames:       r.CacheFilenames,
		CachedProviderEntries: r.CacheProviderEntries,
		SimulatedSeconds:      r.Duration.Seconds(),
		Events:                r.Events,
		Records:               records,
		Phases:                phases,
		Runtime:               liftRuntime(r.Runtime),
		Traces:                liftTraces(r),
		tracePhases:           r.TracePhases,
	}
}

// resultErr surfaces a sharded run abort (a cross-shard barrier violation,
// which ends the run with partial results instead of crashing) from any of
// the given runs as a facade error.
func resultErr(runs ...*core.RunResult) error {
	for _, r := range runs {
		if r != nil && r.Err != nil {
			return fmt.Errorf("locaware: sharded run aborted: %w", r.Err)
		}
	}
	return nil
}

// validateRun checks the shared warmup/queries bounds of every run entry
// point.
func validateRun(warmup, queries int) error {
	if queries <= 0 {
		return errors.New("locaware: queries must be positive")
	}
	if warmup < 0 {
		return errors.New("locaware: warmup must be non-negative")
	}
	return nil
}

// behaviorsOf lowers a protocol list (nil means Baselines) to behaviours.
func behaviorsOf(protocols []Protocol) ([]Protocol, []protocol.Behavior, error) {
	if len(protocols) == 0 {
		protocols = Baselines()
	}
	behaviors := make([]protocol.Behavior, 0, len(protocols))
	for _, p := range protocols {
		b, err := p.behavior()
		if err != nil {
			return nil, nil, err
		}
		behaviors = append(behaviors, b)
	}
	return protocols, behaviors, nil
}

// Run simulates one protocol: warmup queries bring the system to operating
// temperature (records discarded), then queries are measured.
func Run(o Options, p Protocol, warmup, queries int) (*Result, error) {
	b, err := p.behavior()
	if err != nil {
		return nil, err
	}
	if err := validateRun(warmup, queries); err != nil {
		return nil, err
	}
	if err := validateScenario(o, queries); err != nil {
		return nil, err
	}
	s := core.NewSimulation(o.scenarioConfig(queries), b)
	r := s.RunMeasured(warmup, queries)
	if err := resultErr(r); err != nil {
		return nil, err
	}
	return newResult(p, r), nil
}

// TraceEvent is one traced protocol action in a RunTraced run.
type TraceEvent struct {
	// AtSeconds is the virtual timestamp in seconds.
	AtSeconds float64
	// Kind is the action name: submit, forward, duplicate, storage-hit,
	// cache-hit, response-hop, cached, download, failed, gossip, phase.
	Kind string
	// Query is the query's sequence number (0 for gossip and phase events).
	Query uint64
	// Peer is the acting peer; From the counterpart peer for link-crossing
	// actions (-1 otherwise). Network-wide events (scenario phase entries)
	// carry no acting peer and set both to -1.
	Peer, From int
	// Detail is a short annotation (filename, provider, delta size,
	// scenario phase identity).
	Detail string
}

// String renders the event as a log line.
func (e TraceEvent) String() string {
	if e.Peer < 0 {
		// Network-wide event (scenario phase entry): no query, no peer.
		return fmt.Sprintf("%9.3fs ------ %-12s %s", e.AtSeconds, e.Kind, e.Detail)
	}
	if e.From >= 0 {
		return fmt.Sprintf("%9.3fs q=%-4d %-12s peer=%-4d from=%-4d %s", e.AtSeconds, e.Query, e.Kind, e.Peer, e.From, e.Detail)
	}
	return fmt.Sprintf("%9.3fs q=%-4d %-12s peer=%-4d           %s", e.AtSeconds, e.Query, e.Kind, e.Peer, e.Detail)
}

// RunTraced is Run with structured event tracing: it returns the run's
// summary plus up to maxEvents protocol events (submission, forwarding,
// hits, reverse-path caching, downloads, gossip) in virtual-time order.
func RunTraced(o Options, p Protocol, warmup, queries, maxEvents int) (*Result, []TraceEvent, error) {
	b, err := p.behavior()
	if err != nil {
		return nil, nil, err
	}
	if err := validateRun(warmup, queries); err != nil {
		return nil, nil, err
	}
	if err := validateScenario(o, queries); err != nil {
		return nil, nil, err
	}
	s := core.NewSimulation(o.scenarioConfig(queries), b)
	buf := trace.NewBuffer(maxEvents)
	s.Network.SetTracer(buf)
	r := s.RunMeasured(warmup, queries)
	if err := resultErr(r); err != nil {
		return nil, nil, err
	}
	res := newResult(p, r)
	events := make([]TraceEvent, 0, buf.Len())
	for _, e := range buf.Events() {
		events = append(events, TraceEvent{
			AtSeconds: e.At.Seconds(),
			Kind:      e.Kind.String(),
			Query:     e.Query,
			Peer:      e.Peer,
			From:      e.From,
			Detail:    e.Detail,
		})
	}
	return res, events, nil
}

// Figure identifies one of the paper's evaluation figures.
type Figure string

// The paper's three figures.
const (
	FigureDownloadDistance Figure = "fig2-download-distance"
	FigureSearchTraffic    Figure = "fig3-search-traffic"
	FigureSuccessRate      Figure = "fig4-success-rate"
)

// Comparison is a paired multi-protocol run.
type Comparison struct {
	// Results holds per-protocol summaries in run order.
	Results []*Result
	cmp     *core.Comparison
}

// Compare runs each protocol over an identical world and workload.
// Protocols execute concurrently across at most Options.Workers
// simulations (<= 0 means one per CPU); results are identical to a
// sequential loop.
func Compare(o Options, protocols []Protocol, warmup, queries int, checkpoints []int) (*Comparison, error) {
	protocols, behaviors, err := behaviorsOf(protocols)
	if err != nil {
		return nil, err
	}
	if err := validateRun(warmup, queries); err != nil {
		return nil, err
	}
	if err := validateScenario(o, queries); err != nil {
		return nil, err
	}
	cmp := core.RunComparisonWorkers(o.coreConfig(), behaviors, o.Workers, warmup, queries, checkpoints)
	out := &Comparison{cmp: cmp}
	for i, name := range cmp.Order {
		if err := resultErr(cmp.Results[name]); err != nil {
			return nil, err
		}
		out.Results = append(out.Results, newResult(protocols[i], cmp.Results[name]))
	}
	return out, nil
}

// Estimate is a cross-trial sample statistic of one metric: the mean over
// Options.Trials independent replications with its spread.
type Estimate struct {
	// N is the number of trials the estimate pools.
	N int
	// Mean, StdDev and CI95 are the sample mean, the sample standard
	// deviation, and the 95% normal-approximation confidence half-width of
	// the mean (0 for a single trial).
	Mean, StdDev, CI95 float64
}

// String renders the estimate as "mean±ci95", or the bare mean when it
// pools fewer than two trials (a single number has no spread).
func (e Estimate) String() string {
	if e.N < 2 {
		return fmt.Sprintf("%.3f", e.Mean)
	}
	return fmt.Sprintf("%.3f±%.3f", e.Mean, e.CI95)
}

func toEstimate(s stats.Summary) Estimate {
	return Estimate{N: s.N, Mean: s.Mean, StdDev: s.StdDev, CI95: s.CI95()}
}

// TrialsResult summarises one protocol replicated over independent trials.
type TrialsResult struct {
	// Protocol is the protocol that produced the result.
	Protocol Protocol
	// Trials holds the per-trial summaries in trial order; Trials[0] is
	// bit-for-bit the result Run would return for the same Options.
	Trials []*Result
	// The headline metrics aggregated across trials.
	SuccessRate         Estimate
	AvgMessagesPerQuery Estimate
	AvgDownloadRTTMs    Estimate
	SameLocalityRate    Estimate
	CacheHitRate        Estimate
	AvgHops             Estimate
	ControlMessages     Estimate
	ControlKbits        Estimate
	CachedFilenames     Estimate
	// Phases aggregates the scenario phase windows across trials,
	// phase-aligned, so per-phase metrics carry cross-trial error bars like
	// the headline metrics. Nil unless the runs executed under a scenario;
	// render with PhaseEstimateTable or the PhaseTable method.
	Phases []PhaseEstimates
}

func newTrialsResult(p Protocol, cell *core.TrialCell) *TrialsResult {
	tr := &TrialsResult{
		Protocol:            p,
		SuccessRate:         toEstimate(cell.Summary.SuccessRate),
		AvgMessagesPerQuery: toEstimate(cell.Summary.MessagesPerQuery),
		AvgDownloadRTTMs:    toEstimate(cell.Summary.DownloadRTT),
		SameLocalityRate:    toEstimate(cell.Summary.SameLocalityRate),
		CacheHitRate:        toEstimate(cell.Summary.CacheHitRate),
		AvgHops:             toEstimate(cell.Summary.Hops),
		ControlMessages:     toEstimate(cell.Summary.ControlMessages),
		ControlKbits:        toEstimate(cell.Summary.ControlKbits),
		CachedFilenames:     toEstimate(cell.Summary.CachedFilenames),
	}
	for _, ps := range cell.PhaseStats {
		tr.Phases = append(tr.Phases, PhaseEstimates{
			Phase:               ps.Name,
			Start:               ps.Start,
			End:                 ps.End,
			Queries:             toEstimate(ps.Queries),
			SuccessRate:         toEstimate(ps.SuccessRate),
			AvgMessagesPerQuery: toEstimate(ps.MessagesPerQuery),
			AvgDownloadRTTMs:    toEstimate(ps.DownloadRTT),
			SameLocalityRate:    toEstimate(ps.SameLocalityRate),
			CacheHitRate:        toEstimate(ps.CacheHitRate),
			AvgHops:             toEstimate(ps.AvgHops),
		})
	}
	for _, r := range cell.Runs {
		tr.Trials = append(tr.Trials, newResult(p, r))
	}
	return tr
}

// RunTrials replicates Run over Options.Trials independent simulated worlds
// on a worker pool bounded by Options.Workers, aggregating the headline
// metrics into mean ± stddev ± 95% CI estimates. Equal Options always yield
// identical results regardless of worker count.
func RunTrials(o Options, p Protocol, warmup, queries int) (*TrialsResult, error) {
	b, err := p.behavior()
	if err != nil {
		return nil, err
	}
	if err := validateRun(warmup, queries); err != nil {
		return nil, err
	}
	if err := validateScenario(o, queries); err != nil {
		return nil, err
	}
	cell := core.RunTrials(o.coreConfig(), b, core.TrialOptions{Trials: o.Trials, Workers: o.Workers}, warmup, queries)
	if err := resultErr(cell.Runs...); err != nil {
		return nil, err
	}
	return newTrialsResult(p, cell), nil
}

// TrialsComparison is a paired multi-protocol, multi-trial experiment:
// trial t of every protocol shares one world, so each trial is a paired
// comparison and the figures come with cross-trial error bars.
type TrialsComparison struct {
	// Sets holds per-protocol replicated summaries in run order.
	Sets []*TrialsResult
	cmp  *core.TrialComparison
}

// CompareTrials runs Compare over Options.Trials replicated worlds across
// Options.Workers concurrent simulations. With Trials <= 1 the figure
// values equal Compare's exactly (with zero-width error bars).
func CompareTrials(o Options, protocols []Protocol, warmup, queries int, checkpoints []int) (*TrialsComparison, error) {
	protocols, behaviors, err := behaviorsOf(protocols)
	if err != nil {
		return nil, err
	}
	if err := validateRun(warmup, queries); err != nil {
		return nil, err
	}
	if err := validateScenario(o, queries); err != nil {
		return nil, err
	}
	tc := core.RunTrialComparison(o.coreConfig(), behaviors,
		core.TrialOptions{Trials: o.Trials, Workers: o.Workers}, warmup, queries, checkpoints)
	out := &TrialsComparison{cmp: tc}
	for i, name := range tc.Order {
		if err := resultErr(tc.Cells[name].Runs...); err != nil {
			return nil, err
		}
		out.Sets = append(out.Sets, newTrialsResult(protocols[i], tc.Cells[name]))
	}
	return out, nil
}

// Set returns the replicated summary for protocol p, or nil if p was not
// compared.
func (c *TrialsComparison) Set(p Protocol) *TrialsResult {
	for _, s := range c.Sets {
		if s.Protocol == p {
			return s
		}
	}
	return nil
}

// FigureSeries returns one curve per protocol for the figure: x = number of
// queries, y = the trial-mean metric over the window ending there, with a
// 95% CI half-width per point.
func (c *TrialsComparison) FigureSeries(f Figure) []*stats.Series {
	return c.cmp.FigureSeries(string(f))
}

// FigureTable renders the figure as an aligned text table with mean±ci95
// cells, one row per checkpoint and one column per protocol.
func (c *TrialsComparison) FigureTable(f Figure) string {
	return stats.Table("queries", c.cmp.FigureSeries(string(f)))
}

// FigureCSV renders the figure as CSV with a <protocol>_ci95 column per
// protocol for external plotting with error bars.
func (c *TrialsComparison) FigureCSV(f Figure) string {
	return stats.CSV("queries", c.cmp.FigureSeries(string(f)))
}

// Headlines computes the headline claims from trial-mean metrics.
func (c *TrialsComparison) Headlines() Headlines {
	return toHeadlines(c.cmp.Headlines())
}

// Result returns the summary for protocol p, or nil if p was not compared.
func (c *Comparison) Result(p Protocol) *Result {
	for _, r := range c.Results {
		if r.Protocol == p {
			return r
		}
	}
	return nil
}

// FigureSeries returns one curve per protocol for the figure: x = number
// of queries, y = the figure's metric over the window ending there.
func (c *Comparison) FigureSeries(f Figure) []*stats.Series {
	return c.cmp.FigureSeries(string(f))
}

// FigureTable renders the figure as an aligned text table, one row per
// checkpoint and one column per protocol — the same rows the paper's plots
// show.
func (c *Comparison) FigureTable(f Figure) string {
	return stats.Table("queries", c.cmp.FigureSeries(string(f)))
}

// FigureCSV renders the figure as CSV for external plotting.
func (c *Comparison) FigureCSV(f Figure) string {
	return stats.CSV("queries", c.cmp.FigureSeries(string(f)))
}

// Headlines reports the paper's three headline claims measured on this
// comparison: download-distance reduction (paper ≈ −14%), search-traffic
// reduction versus flooding (paper ≈ −98%), and success-rate gains versus
// Dicas/Dicas-Keys (paper ≈ +23% / +33%).
type Headlines struct {
	DistanceReduction          float64
	TrafficReductionVsFlooding float64
	HitGainVsDicas             float64
	HitGainVsDicasKeys         float64
}

func toHeadlines(h core.Headline) Headlines {
	return Headlines{
		DistanceReduction:          h.DistanceReduction,
		TrafficReductionVsFlooding: h.TrafficReductionVsFlooding,
		HitGainVsDicas:             h.HitGainVsDicas,
		HitGainVsDicasKeys:         h.HitGainVsDicasKeys,
	}
}

// Headlines computes the headline claims from the comparison.
func (c *Comparison) Headlines() Headlines {
	return toHeadlines(c.cmp.Headlines())
}

// Seconds is a convenience for expressing sim-time quantities in seconds
// in user-facing configuration.
func Seconds(s float64) int64 { return int64(sim.FromSeconds(s)) }

// LocalityReport describes how a landmark set partitions the peer
// population into physical localities — the §5.1 analysis behind the
// paper's choice of 4 landmarks.
type LocalityReport struct {
	// Landmarks is the landmark count k; PossibleLocIDs is k!.
	Landmarks      int
	PossibleLocIDs int
	// OccupiedLocIDs is how many locIds at least one peer maps to.
	OccupiedLocIDs int
	// MeanPeersPerLocality is peers / occupied locIds (the paper reports
	// ≈8 for 5 landmarks over 1000 peers, too thin to find same-locality
	// providers).
	MeanPeersPerLocality float64
	// LargestLocality is the population of the most crowded locId.
	LargestLocality int
}

// Localities builds the physical world of opts (without running any
// queries) and reports its locality structure.
func Localities(o Options) LocalityReport {
	cfg := o.coreConfig()
	s := core.NewSimulation(cfg, protocol.Flooding{})
	census := s.Locator.Census()
	rep := LocalityReport{
		Landmarks:            cfg.Landmarks,
		PossibleLocIDs:       netmodelNumLocIDs(cfg.Landmarks),
		OccupiedLocIDs:       len(census),
		MeanPeersPerLocality: s.Locator.MeanPeersPerOccupiedLocID(),
	}
	for _, n := range census {
		if n > rep.LargestLocality {
			rep.LargestLocality = n
		}
	}
	return rep
}

// netmodelNumLocIDs avoids exporting the internal package in the facade
// signature.
func netmodelNumLocIDs(k int) int {
	n := 1
	for i := 2; i <= k; i++ {
		n *= i
	}
	return n
}
