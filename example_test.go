package locaware_test

import (
	"fmt"
	"log"
	"reflect"

	locaware "github.com/p2prepro/locaware"
)

// ExampleRun simulates Locaware on a small overlay and reports whether the
// run produced the paper's qualitative behaviour.
func ExampleRun() {
	opts := locaware.DefaultOptions()
	opts.Peers = 150
	opts.QueryRate = 0.01 // accelerate virtual time for the example

	res, err := locaware.Run(opts, locaware.ProtocolLocaware, 100, 200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("measured queries:", res.Queries)
	fmt.Println("some queries succeed:", res.SuccessRate > 0)
	fmt.Println("selective search (well under flooding's hundreds of msgs):", res.AvgMessagesPerQuery < 100)
	// Output:
	// measured queries: 200
	// some queries succeed: true
	// selective search (well under flooding's hundreds of msgs): true
}

// ExampleRunTrials replicates a run over independently seeded worlds in
// parallel and reports cross-trial estimates. The worker count only changes
// wall-clock time: the aggregated numbers are identical at any Workers
// value.
func ExampleRunTrials() {
	opts := locaware.DefaultOptions()
	opts.Peers = 150
	opts.QueryRate = 0.01
	opts.Trials = 4  // four independent worlds
	opts.Workers = 0 // one simulation per CPU

	agg, err := locaware.RunTrials(opts, locaware.ProtocolLocaware, 100, 200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("trials:", len(agg.Trials))
	fmt.Println("pooled trials per estimate:", agg.SuccessRate.N)
	fmt.Println("first trial matches locaware.Run:", func() bool {
		one, err := locaware.Run(opts, locaware.ProtocolLocaware, 100, 200)
		return err == nil && reflect.DeepEqual(one, agg.Trials[0])
	}())
	fmt.Println("independent trials spread:", agg.AvgMessagesPerQuery.StdDev > 0)
	// Output:
	// trials: 4
	// pooled trials per estimate: 4
	// first trial matches locaware.Run: true
	// independent trials spread: true
}

// ExampleCompare runs the paper's comparison on one shared world and
// checks the Figure 3 headline: caching protocols cost a small fraction of
// flooding's traffic.
func ExampleCompare() {
	opts := locaware.DefaultOptions()
	opts.Peers = 150
	opts.QueryRate = 0.01

	cmp, err := locaware.Compare(opts,
		[]locaware.Protocol{locaware.ProtocolFlooding, locaware.ProtocolLocaware},
		100, 200, nil)
	if err != nil {
		log.Fatal(err)
	}
	fl := cmp.Result(locaware.ProtocolFlooding)
	la := cmp.Result(locaware.ProtocolLocaware)
	fmt.Println("flooding finds more:", fl.SuccessRate >= la.SuccessRate)
	fmt.Println("locaware costs far less:", la.AvgMessagesPerQuery < fl.AvgMessagesPerQuery/5)
	// Output:
	// flooding finds more: true
	// locaware costs far less: true
}
