package locaware

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestObsDeterminismInert is the inertness lock of the observability
// layer: attaching an Observer must not move a single output byte — on
// the plain engine (checked against the golden table) and on the sharded
// loop (checked instrumented-vs-uninstrumented, since sharded output
// differs from the golden single-queue bytes by design). Run under -race
// in CI, this also proves the shard-confined cells never race.
func TestObsDeterminismInert(t *testing.T) {
	// Golden path: instrumented Compare reproduces the golden bytes.
	o := goldenOptions()
	o.Observer = NewObserver()
	cmp, err := Compare(o, Baselines(), 100, 200, []int{50, 100, 150, 200})
	if err != nil {
		t.Fatal(err)
	}
	got := "== fig3-search-traffic (messages/query)\n" +
		cmp.FigureTable(FigureSearchTraffic) +
		"== fig4-success-rate\n" +
		cmp.FigureTable(FigureSuccessRate)
	want, err := os.ReadFile(filepath.Join("testdata", "golden_compare_200peers.txt"))
	if err != nil {
		t.Fatalf("reading golden file: %v", err)
	}
	if got != string(want) {
		t.Fatalf("instrumented Compare drifted from golden table:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// Every instrumented run carries its snapshot, and the totals are
	// plausible: one submission counted per measured+warmup query.
	for _, r := range cmp.Results {
		if r.Runtime == nil {
			t.Fatalf("%s: no Runtime snapshot under an Observer", r.Protocol)
		}
		if r.Runtime.Submitted != 300 {
			t.Fatalf("%s: runtime counted %d submissions, want 300 (100 warmup + 200 measured)", r.Protocol, r.Runtime.Submitted)
		}
		if len(r.Runtime.EventsByKind) == 0 || r.Runtime.EventsScheduled == 0 {
			t.Fatalf("%s: empty event-loop telemetry: %+v", r.Protocol, r.Runtime)
		}
	}

	// Sharded path: instrumentation on vs off, field-for-field equal
	// results (the parallel drain stays parallel under instrumentation).
	run := func(observe bool) *Result {
		o := goldenOptions()
		o.Shards = 2
		if observe {
			o.Observer = NewObserver()
		}
		r, err := Run(o, ProtocolLocaware, 100, 200)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	with, without := run(true), run(false)
	if without.Runtime != nil {
		t.Fatal("uninstrumented run grew a Runtime snapshot")
	}
	rt := with.Runtime
	if rt == nil {
		t.Fatal("instrumented sharded run has no Runtime snapshot")
	}
	if rt.Epochs == 0 || rt.Shards != 2 {
		t.Fatalf("sharded runtime telemetry: %+v", rt)
	}
	with.Runtime = nil
	if !reflect.DeepEqual(with, without) {
		t.Fatalf("sharded run drifted under instrumentation:\nwith:    %+v\nwithout: %+v", with, without)
	}
}

// TestObserverEndpoints locks the Observer's scrape surface: the full
// family catalog before any run, counted values after one, and the pprof
// handlers on the same mux.
func TestObserverEndpoints(t *testing.T) {
	obs := NewObserver()
	srv := httptest.NewServer(obs.Handler())
	defer srv.Close()

	read := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}

	code, body := read("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics answered %d", code)
	}
	for _, fam := range []string{
		"sim_events_total", "sim_queue_depth_high_water", "sim_epoch_drain_seconds",
		"protocol_queries_submitted_total", "protocol_cache_hits_total",
		"campaign_cells_executed_total",
	} {
		if !strings.Contains(body, "# TYPE "+fam+" ") {
			t.Fatalf("pre-run catalog missing %s:\n%s", fam, body)
		}
	}

	o := goldenOptions()
	o.Peers = 60
	o.Observer = obs
	if _, err := Run(o, ProtocolLocaware, 20, 50); err != nil {
		t.Fatal(err)
	}
	_, body = read("/metrics")
	if !strings.Contains(body, "protocol_queries_submitted_total 70\n") {
		t.Fatalf("post-run /metrics missing submission count:\n%s", body)
	}
	var sb strings.Builder
	if err := obs.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != body {
		t.Fatal("WriteMetrics and /metrics render different bytes")
	}

	if code, _ := read("/debug/pprof/heap?debug=1"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/heap answered %d", code)
	}

	// The run report renders and mentions the load-bearing sections.
	res, err := Run(o, ProtocolLocaware, 20, 50)
	if err != nil {
		t.Fatal(err)
	}
	text := res.Runtime.Report()
	for _, want := range []string{"event loop", "queries submitted", "events by kind", "pool free lists"} {
		if !strings.Contains(text, want) {
			t.Fatalf("Report() missing %q:\n%s", want, text)
		}
	}
}
